module SF = Numerics.Safe_float

type refinement = {
  blacklist : bool;
  rate_limit : (int * float) option;
  occupied : int;
  pool : int;
}

let validate_refinement r =
  if r.pool < 1 then invalid_arg "Attempts: pool < 1";
  if r.occupied < 0 || r.occupied >= r.pool then
    invalid_arg "Attempts: occupied outside [0, pool)";
  match r.rate_limit with
  | Some (threshold, delay) ->
      if threshold < 0 || delay < 0. then invalid_arg "Attempts: bad rate limit"
  | None -> ()

let no_refinement ~occupied ?(pool = Params.address_space_size) () =
  let r = { blacklist = false; rate_limit = None; occupied; pool } in
  validate_refinement r;
  r

let draft_refinement ~occupied ?(pool = Params.address_space_size) () =
  let r = { blacklist = true; rate_limit = Some (10, 60.); occupied; pool } in
  validate_refinement r;
  r

type analysis = {
  mean_cost : float;
  error_probability : float;
  mean_time : float;
  mean_attempts : float;
  truncated_mass : float;
}

let analyze ?(max_attempts = 10_000) (p : Params.t) refinement ~n ~r =
  validate_refinement refinement;
  if n < 1 then invalid_arg "Attempts.analyze: n < 1";
  if r < 0. then invalid_arg "Attempts.analyze: negative r";
  let pis = Probes.pi_all p ~n ~r in
  let pi_n = pis.(n) in
  let sum_pi = SF.sum (Array.sub pis 0 n) in
  let step_cost = r +. p.Params.probe_cost in
  let nf = float_of_int n in
  (* per-attempt conditional expectations, given occupancy prob q_i:
     Abel summation turns sum_k (pi_(k-1) - pi_k) k + n pi_n into
     sum_(i<n) pi_i, exactly the Eq. 3 structure *)
  let attempt_cost q_i =
    ((1. -. q_i) *. nf *. step_cost)
    +. (q_i *. ((step_cost *. sum_pi) +. (pi_n *. p.Params.error_cost)))
  in
  let attempt_time q_i =
    ((1. -. q_i) *. nf *. r) +. (q_i *. r *. sum_pi)
  in
  let q_of_attempt i =
    (* i is 1-based; with blacklisting, i - 1 occupied addresses are
       known and excluded from the draw *)
    if not refinement.blacklist then
      SF.div (float_of_int refinement.occupied) (float_of_int refinement.pool)
    else
      let known = min (i - 1) refinement.occupied in
      let remaining_occupied = refinement.occupied - known in
      let remaining_pool = refinement.pool - known in
      SF.div (float_of_int remaining_occupied) (float_of_int remaining_pool)
  in
  let delay_before_attempt i =
    match refinement.rate_limit with
    | Some (threshold, delay) when i - 1 >= threshold && i > 1 -> delay
    | Some _ | None -> 0.
  in
  let cost = ref 0. and time = ref 0. and error = ref 0. in
  let attempts = ref 0. in
  let reach = ref 1. in
  let i = ref 1 in
  while !reach > 1e-15 && !i <= max_attempts do
    let q_i = q_of_attempt !i in
    let delay = delay_before_attempt !i in
    attempts := !attempts +. !reach;
    cost := !cost +. (!reach *. (delay +. attempt_cost q_i));
    time := !time +. (!reach *. (delay +. attempt_time q_i));
    error := !error +. (!reach *. q_i *. pi_n);
    reach := !reach *. q_i *. (1. -. pi_n);
    incr i
  done;
  { mean_cost = !cost;
    error_probability = !error;
    mean_time = !time;
    mean_attempts = !attempts;
    truncated_mass = !reach }

let compare_refinements p ~occupied ?(pool = Params.address_space_size) ~n ~r () =
  let base = { blacklist = false; rate_limit = None; occupied; pool } in
  [ ("baseline", analyze p base ~n ~r);
    ("blacklist", analyze p { base with blacklist = true } ~n ~r);
    ("rate-limit", analyze p { base with rate_limit = Some (10, 60.) } ~n ~r);
    ( "draft (both)",
      analyze p { base with blacklist = true; rate_limit = Some (10, 60.) } ~n ~r
    ) ]
