(** The Internet-draft's protocol constants, verbatim.

    The paper abstracts draft-ietf-zeroconf-ipv4-linklocal into the two
    parameters [(n, r)]; this module records what the draft actually
    prescribes (including the randomized inter-probe spacing the model
    fixes at [r]) and maps it onto the model's and the simulator's
    parameter spaces. *)

val probe_num : int
(** 4 — the number of ARP probes. *)

val probe_wait : float
(** 1 s — initial random delay bound before the first probe. *)

val probe_min : float
(** 1 s — minimum delay between probes. *)

val probe_max : float
(** 2 s — maximum delay between probes. *)

val announce_num : int
(** 2 — ARP announcements after claiming an address. *)

val announce_interval : float
(** 2 s — between announcements. *)

val max_conflicts : int
(** 10 — collisions before rate limiting engages. *)

val rate_limit_interval : float
(** 60 s — the mandated delay between attempts once rate-limited. *)

val defend_interval : float
(** 10 s — minimum time between defensive ARPs during maintenance. *)

val model_parameters : unit -> int * float
(** The paper's reading of the draft: [(n, r)] with [n = PROBE_NUM] and
    [r] the {e mean} inter-probe spacing [(PROBE_MIN + PROBE_MAX) / 2]
    — which is 1.5 s, though the paper rounds to its [r = 2] worst
    case.  Returned as [(4, 1.5)]. *)

val simulator_config : Params.t -> Netsim.Newcomer.config
(** The draft, faithfully: [PROBE_NUM] probes, spacing jittered
    uniformly in [\[PROBE_MIN, PROBE_MAX\]], immediate abort, failed
    addresses avoided, rate limiting after [MAX_CONFLICTS].  Probe and
    error costs come from the scenario so simulator-route cost
    estimates are comparable to the analytic routes. *)
