let print_string = Stdlib.print_string
let print_line s = Stdlib.print_endline s

let prerr_line s =
  Stdlib.prerr_endline s
