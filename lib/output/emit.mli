(** The sanctioned console sink.

    The R4 lint rule (I/O containment, see [tools/lint] and DESIGN.md
    "Static analysis") forbids [print_*] / [Printf.printf] / stderr
    writes anywhere in [lib/] outside [lib/output]: library code
    returns strings or structured values, and whatever must reach the
    console reaches it through here (or through [Logs]).  Keeping the
    sink one module wide is what makes "does the library ever write to
    stdout?" a greppable question. *)

val print_string : string -> unit
(** Write to stdout, no newline, no flush. *)

val print_line : string -> unit
(** Write to stdout followed by a newline. *)

val prerr_line : string -> unit
(** Write to stderr followed by a newline (diagnostics only). *)
