(** Several hosts configuring at once — the setting of the companion
    Uppaal study (Zhang & Vaandrager [7]) that the paper's single-host
    model abstracts away.

    Newcomers may pick the same candidate simultaneously; the draft's
    rule that a probe from a rival for one's own candidate also counts
    as a conflict is implemented in {!Newcomer}, and this module
    measures how well it prevents newcomer–newcomer collisions. *)

type result = {
  outcomes : Metrics.outcome array; (** One per newcomer, completion order. *)
  all_unique : bool;     (** Every newcomer ended on a distinct address. *)
  collisions : int;      (** Outcomes flagged as collided. *)
  makespan : float;      (** Virtual time until the last acceptance. *)
}

val run :
  loss:float -> one_way:Dist.Distribution.t ->
  ?processing:Dist.Distribution.t -> occupied:int -> ?pool_size:int ->
  newcomers:int -> ?spacing:float -> config:Newcomer.config ->
  rng:Numerics.Rng.t -> unit -> result
(** Start [newcomers] configuring hosts [spacing] seconds apart
    (default [0.]: all at once) on a link with [occupied] already-
    configured responders.  Each accepted newcomer immediately becomes
    a responder itself, defending its new address against later
    arrivals. *)

val run_trials :
  ?domains:Exec.Pool.t -> loss:float -> one_way:Dist.Distribution.t ->
  ?processing:Dist.Distribution.t -> occupied:int -> ?pool_size:int ->
  newcomers:int -> ?spacing:float -> config:Newcomer.config ->
  trials:int -> rng:Numerics.Rng.t -> unit -> result array
(** [trials] independent replications of {!run}, fanned out across the
    [Exec] domain pool ([domains], defaulting to the process-wide
    pool).  Each replication gets its own generator split from [rng]
    in trial order before any work starts, so the result array is
    bit-identical at every job count (and to the serial run). *)

val collision_rate_vs_newcomers :
  ?domains:Exec.Pool.t -> loss:float -> one_way:Dist.Distribution.t ->
  occupied:int -> ?pool_size:int -> config:Newcomer.config -> trials:int ->
  counts:int list -> rng:Numerics.Rng.t -> unit -> (int * float) list
(** Sweep the number of simultaneous newcomers and estimate the
    per-newcomer collision probability for each count; replications run
    through {!run_trials}. *)
