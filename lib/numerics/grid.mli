(** Sample grids for parameter sweeps (the [r]-axes of Figures 2–6). *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] gives [n] points from [a] to [b] inclusive.
    Requires [n >= 2] (or [n = 1] with [a = b]). *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] gives [n] points whose base-10 logarithms are
    equispaced between [a] and [b]: from [10^a] to [10^b]. *)

val geomspace : float -> float -> int -> float array
(** [geomspace a b n] gives [n] geometrically-spaced points from [a]
    to [b]; both must be strictly positive. *)

val arange : ?step:float -> float -> float -> float array
(** [arange a b] gives points [a, a+step, ...] strictly below [b]
    (default [step = 1.]). *)

val midpoints : float array -> float array
(** Midpoints of consecutive entries; length shrinks by one. *)

val map_sweep : (float -> 'a) -> float array -> (float * 'a) array
(** Evaluate a function over a grid, pairing each abscissa with its
    value.  [Exec.Parallel.map_sweep] is the multi-domain variant. *)

val chunks : int -> 'a array -> 'a array array
(** [chunks k xs] splits [xs] into at most [k] contiguous chunks whose
    lengths differ by at most one (concatenating them restores [xs]).
    Returns fewer than [k] chunks when [xs] is shorter than [k], and
    [[||]] on an empty input; no chunk is ever empty.  This is the
    work-splitting primitive of the [Exec] domain pool.  Raises
    [Invalid_argument] if [k < 1]. *)
