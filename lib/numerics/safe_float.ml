let epsilon = Stdlib.epsilon_float

(* Sanctioned spellings of the NaN-capable float primitives.  The R1
   lint rule (tools/lint) bans the raw [log]/[exp]/[**]/[/.] spellings
   in probability-carrying modules, so every transcendental or division
   on the Eq. 3/4 path funnels through these four names and the domain
   contract has a single audit point.  They are re-declared externals /
   trivial aliases of the Stdlib primitives: same instruction, same
   result bit for bit, no wrapper cost in the kernels. *)
external log : float -> float = "caml_log_float" "log"
[@@unboxed] [@@noalloc]

external exp : float -> float = "caml_exp_float" "exp"
[@@unboxed] [@@noalloc]

external pow : float -> float -> float = "caml_power_float" "pow"
[@@unboxed] [@@noalloc]

external div : float -> float -> float = "%divfloat"

let approx_eq ?(rtol = 1e-9) ?(atol = 0.) a b =
  if Float.is_nan a || Float.is_nan b then false
  else if a = b then true (* covers equal infinities *)
  else if not (Float.is_finite a && Float.is_finite b) then false
  else Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Safe_float.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x

let clamp_probability x = clamp ~lo:0. ~hi:1. x

let log1mexp x =
  if x >= 0. then invalid_arg "Safe_float.log1mexp: argument must be negative";
  (* Mächler's recipe: switch branches at log 2 for best accuracy. *)
  if x > -.Float.log 2. then log (-.Float.expm1 x) else Float.log1p (-.exp x)

let log_sum_exp a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else
    let hi = Float.max a b and lo = Float.min a b in
    hi +. Float.log1p (exp (lo -. hi))

let log_diff_exp a b =
  if b = neg_infinity then a
  else if a < b then invalid_arg "Safe_float.log_diff_exp: a < b"
  else if a = b then neg_infinity
  else a +. log1mexp (b -. a)

(* Neumaier's improvement of Kahan summation: track the compensation of
   whichever operand has the larger magnitude. *)
let sum_prefix xs n =
  if n < 0 || n > Array.length xs then
    invalid_arg "Safe_float.sum_prefix: prefix length out of range";
  let s = ref 0. and comp = ref 0. in
  for i = 0 to n - 1 do
    let x = xs.(i) in
    let t = !s +. x in
    if Float.abs !s >= Float.abs x then comp := !comp +. ((!s -. t) +. x)
    else comp := !comp +. ((x -. t) +. !s);
    s := t
  done;
  !s +. !comp

let sum xs = sum_prefix xs (Array.length xs)

let sum_list xs =
  let s = ref 0. and comp = ref 0. in
  List.iter
    (fun x ->
      let t = !s +. x in
      if Float.abs !s >= Float.abs x then comp := !comp +. ((!s -. t) +. x)
      else comp := !comp +. ((x -. t) +. !s);
      s := t)
    xs;
  !s +. !comp

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Safe_float.dot: length mismatch";
  sum (Array.init n (fun i -> a.(i) *. b.(i)))

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Safe_float.mean: empty array";
  sum xs /. float_of_int n

let is_probability x = (not (Float.is_nan x)) && x >= 0. && x <= 1.
let finite x = Float.is_finite x
