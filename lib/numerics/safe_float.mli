(** Floating-point helpers used throughout the numeric substrate.

    The zeroconf cost model mixes quantities spanning more than 50
    orders of magnitude (error costs around [1e35] against probabilities
    down to [1e-120]), so the rest of the library leans on the
    cancellation-free primitives collected here. *)

val epsilon : float
(** Machine epsilon for 64-bit floats ([Stdlib.epsilon_float]). *)

(** {1 Sanctioned float primitives}

    The repo's R1 lint rule ({e float hygiene}, see [tools/lint] and
    DESIGN.md "Static analysis") forbids raw [log] / [exp] / [( ** )] /
    [( /. )] in the probability-carrying modules: those quantities mix
    magnitudes from [1e-120] to [1e35], and a stray [log 0.] or [0./.0.]
    silently poisons everything downstream.  The four names below are
    the sanctioned spellings — re-declared externals and a [%divfloat]
    alias, so they compile to exactly the Stdlib instruction and results
    are bit-identical — giving every NaN-capable primitive on the
    Eq. 3/4 path one greppable, lintable audit point. *)

external log : float -> float = "caml_log_float" "log"
[@@unboxed] [@@noalloc]
(** [Stdlib.log], sanctioned.  Callers own the [x >= 0.] obligation and
    must guard or document the [x = 0.] → [neg_infinity] case. *)

external exp : float -> float = "caml_exp_float" "exp"
[@@unboxed] [@@noalloc]
(** [Stdlib.exp], sanctioned. *)

external pow : float -> float -> float = "caml_power_float" "pow"
[@@unboxed] [@@noalloc]
(** [( ** )], sanctioned.  Callers own the domain obligation (base
    [>= 0.] in this codebase). *)

external div : float -> float -> float = "%divfloat"
(** [( /. )], sanctioned.  Callers own the zero-divisor guard. *)

val approx_eq : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_eq ~rtol ~atol a b] holds when
    [|a - b| <= atol + rtol * max |a| |b|].  Defaults: [rtol = 1e-9],
    [atol = 0.].  [nan] is never approximately equal to anything;
    equal infinities are. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] bounds [x] into [\[lo, hi\]].  Raises
    [Invalid_argument] if [lo > hi]. *)

val clamp_probability : float -> float
(** Clamp into [\[0, 1\]]; intended for values that are probabilities up
    to rounding noise. *)

val log1mexp : float -> float
(** [log1mexp x] computes [log (1 - exp x)] accurately for [x < 0].
    Raises [Invalid_argument] for [x >= 0]. *)

val log_sum_exp : float -> float -> float
(** [log_sum_exp a b = log (exp a + exp b)] without overflow; accepts
    [neg_infinity] for either argument. *)

val log_diff_exp : float -> float -> float
(** [log_diff_exp a b = log (exp a - exp b)] for [a >= b]; raises
    [Invalid_argument] when [a < b]. *)

val sum : float array -> float
(** Kahan–Babuska (Neumaier) compensated sum. *)

val sum_prefix : float array -> int -> float
(** [sum_prefix xs n] is the compensated sum of [xs.(0) .. xs.(n - 1)],
    without copying the prefix; equal to [sum (Array.sub xs 0 n)] bit
    for bit.  Raises [Invalid_argument] when [n] is negative or exceeds
    the array length. *)

val sum_list : float list -> float
(** Compensated sum over a list. *)

val dot : float array -> float array -> float
(** Compensated dot product.  Raises [Invalid_argument] on length
    mismatch. *)

val mean : float array -> float
(** Compensated arithmetic mean.  Raises [Invalid_argument] on an empty
    array. *)

val is_probability : float -> bool
(** True when the value lies in [\[0, 1\]] (and is not [nan]). *)

val finite : float -> bool
(** True for neither [nan] nor infinite. *)
