(* "For a hand-held device user, a configuration time of 8 seconds may
   seem barely acceptable" (paper, Sec. 1).  The mean cost of Eq. 3
   hides the tail; this study computes the full configuration-time
   distribution for candidate (n, r) designs and asks: what fraction of
   users wait longer than the draft's 8 seconds?

     dune exec examples/impatient_user.exe
*)

let () =
  let scenario = Zeroconf.Params.figure2 in
  Format.printf "%a@.@." Zeroconf.Params.pp scenario;
  let table =
    Output.Table.create
      ~columns:
        [ ("n", Output.Table.Right); ("r", Output.Table.Right);
          ("mean (s)", Output.Table.Right); ("median", Output.Table.Right);
          ("p99", Output.Table.Right); ("P(>8s)", Output.Table.Right);
          ("error prob", Output.Table.Right) ]
  in
  let designs =
    [ (4, 2.) (* the draft *); (4, 0.2) (* draft, reliable links *);
      (3, 2.14) (* cost-optimal for this scenario *); (5, 1.03); (8, 0.42) ]
  in
  List.iter
    (fun (n, r) ->
      let dist = Zeroconf.Latency.periods scenario ~n ~r in
      Output.Table.add_row table
        [ string_of_int n;
          Printf.sprintf "%.2f" r;
          Printf.sprintf "%.3f" (Zeroconf.Latency.mean dist);
          Printf.sprintf "%.3f" (Zeroconf.Latency.quantile dist 0.5);
          Printf.sprintf "%.3f" (Zeroconf.Latency.quantile dist 0.99);
          Printf.sprintf "%.2e" (Zeroconf.Latency.exceeds dist 8.);
          Printf.sprintf "%.1e"
            (Zeroconf.Reliability.error_probability scenario ~n ~r) ])
    designs;
  print_string (Output.Table.to_text table);

  (* The cost/reliability frontier, so the designer can see what the
     impatience is buying. *)
  Format.printf "@.Pareto frontier (cost vs reliability), every 30th design:@.";
  let front = Engine.Tradeoff.front ~n_max:10 ~r_points:150 ~r_max:6. scenario in
  List.iteri
    (fun i (d : Engine.Tradeoff.design) ->
      if i mod 30 = 0 then
        Format.printf "  n = %2d, r = %5.2f: cost %7.2f, error 1e%.0f@."
          d.Engine.Tradeoff.n d.Engine.Tradeoff.r d.Engine.Tradeoff.cost
          d.Engine.Tradeoff.log10_error)
    front;
  match Engine.Tradeoff.knee front with
  | Some k ->
      Format.printf
        "@.knee of the frontier: n = %d, r = %.2f -- the compromise a designer@.\
         would pick without a cost model; the paper's machinery justifies it.@."
        k.Engine.Tradeoff.n k.Engine.Tradeoff.r
  | None -> ()
