(* Reproduce Sec. 4.5: which costs E (collision) and c (postage) make
   the Internet-draft's parameter choices optimal under worst-case
   network assumptions?

     dune exec examples/calibration_study.exe
*)

let () =
  Format.printf
    "Sec. 4.5 inverse problem: find (E, c) such that the draft's (n, r)@.\
     minimizes the mean total cost.@.@.";
  let rows = Engine.Experiments.section_45 () in
  let table =
    Output.Table.create
      ~columns:
        [ ("scenario", Output.Table.Left); ("target", Output.Table.Left);
          ("our E", Output.Table.Right); ("paper E", Output.Table.Right);
          ("our c", Output.Table.Right); ("paper c", Output.Table.Right);
          ("opt under (E, c)", Output.Table.Left) ]
  in
  List.iter
    (fun (row : Engine.Experiments.calibration_row) ->
      let d = row.derived in
      Output.Table.add_row table
        [ row.label;
          Printf.sprintf "n=%d, r=%g" row.target_n row.target_r;
          Printf.sprintf "%.3g" d.Zeroconf.Calibrate.error_cost;
          Printf.sprintf "%.3g" row.paper_error_cost;
          Printf.sprintf "%.3f" d.Zeroconf.Calibrate.probe_cost;
          Printf.sprintf "%.3g" row.paper_probe_cost;
          Printf.sprintf "n=%d, r=%.3f"
            d.Zeroconf.Calibrate.optimum.Zeroconf.Optimize.n
            d.Zeroconf.Calibrate.optimum.Zeroconf.Optimize.r ])
    rows;
  print_string (Output.Table.to_text table);
  Format.printf
    "@.Our c is the exact threshold postage above which the draft's n \
     becomes@.globally optimal; the paper quotes round values just above \
     it.  Our E@.comes from the stationarity of C_n at the target r \
     (Eq. 3 is affine in E).@."
